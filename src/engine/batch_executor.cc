#include "engine/batch_executor.h"

#include <future>
#include <map>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "stats/quantile.h"

namespace pass {

BatchExecutor::BatchExecutor(size_t num_threads)
    : scheduler_(SchedulerOptions{num_threads, /*max_in_flight=*/0, {}}) {}

BatchExecutor& BatchExecutor::Shared(size_t num_threads) {
  // Normalize before keying the cache so Shared(0) and an explicit
  // Shared(hardware_concurrency) share one pool.
  num_threads = ThreadPool::ResolveNumThreads(num_threads);
  static Mutex* mu = new Mutex();
  static auto* executors =
      new std::map<size_t, std::unique_ptr<BatchExecutor>>();
  MutexLock lock(*mu);
  std::unique_ptr<BatchExecutor>& executor = (*executors)[num_threads];
  if (executor == nullptr) {
    executor = std::make_unique<BatchExecutor>(num_threads);
  }
  return *executor;
}

BatchResult BatchExecutor::Run(const AqpSystem& system,
                               const std::vector<Query>& queries) const {
  BatchResult result;
  result.num_threads = scheduler_.num_threads();
  result.answers.resize(queries.size());
  result.latency_ms.resize(queries.size());

  // Submit all, wait all: the scheduler is the only execution path, and
  // waiting on this batch's own futures (not a pool-wide barrier) keeps
  // concurrent Run() calls on one executor independent.
  std::vector<std::future<ScheduledAnswer>> futures;
  futures.reserve(queries.size());
  Stopwatch batch_timer;
  for (const Query& query : queries) {
    futures.push_back(scheduler_.Submit(system, query));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ScheduledAnswer scheduled = futures[i].get();
    // No deadline was set and this executor outlives the batch, so the
    // scheduler can only have resolved with an answer.
    PASS_CHECK_MSG(scheduled.status.ok(),
                   scheduled.status.ToString().c_str());
    result.answers[i] = std::move(scheduled.answer);
    result.latency_ms[i] = scheduled.run_ms;
  }
  result.wall_ms = batch_timer.ElapsedMillis();
  return result;
}

BatchErrorSummary BatchExecutor::Score(
    const BatchResult& result, const std::vector<ExactResult>& truths) {
  PASS_CHECK(result.answers.size() == truths.size());
  BatchErrorSummary summary;
  std::vector<double> rel_errors;
  rel_errors.reserve(truths.size());
  for (size_t i = 0; i < truths.size(); ++i) {
    if (!UsableGroundTruth(truths[i])) continue;
    rel_errors.push_back(
        RelativeError(result.answers[i].estimate.value, truths[i]));
  }
  summary.num_scored = rel_errors.size();
  if (!rel_errors.empty()) {
    summary.median_rel_error = Quantile(rel_errors, 0.5);
    summary.p95_rel_error = Quantile(rel_errors, 0.95);
  }
  return summary;
}

double LatencyQuantileMs(const BatchResult& result, double q) {
  if (result.latency_ms.empty()) return 0.0;
  return Quantile(result.latency_ms, q);
}

}  // namespace pass
