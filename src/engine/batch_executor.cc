#include "engine/batch_executor.h"

#include <cmath>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "stats/quantile.h"

namespace pass {

BatchExecutor::BatchExecutor(size_t num_threads) : pool_(num_threads) {}

BatchExecutor& BatchExecutor::Shared(size_t num_threads) {
  // Normalize before keying the cache so Shared(0) and an explicit
  // Shared(hardware_concurrency) share one pool.
  num_threads = ThreadPool::ResolveNumThreads(num_threads);
  static std::mutex* mu = new std::mutex();
  static auto* executors =
      new std::map<size_t, std::unique_ptr<BatchExecutor>>();
  std::lock_guard<std::mutex> lock(*mu);
  std::unique_ptr<BatchExecutor>& executor = (*executors)[num_threads];
  if (executor == nullptr) {
    executor = std::make_unique<BatchExecutor>(num_threads);
  }
  return *executor;
}

BatchResult BatchExecutor::Run(const AqpSystem& system,
                               const std::vector<Query>& queries) const {
  BatchResult result;
  result.num_threads = pool_.num_threads();
  result.answers.resize(queries.size());
  result.latency_ms.resize(queries.size());

  // Per-batch completion latch (not ThreadPool::Wait): concurrent Run()
  // calls on one executor interleave tasks in the shared pool, and each
  // call must only wait for — and time — its own batch.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  } latch{{}, {}, queries.size()};

  Stopwatch batch_timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    pool_.Submit([&system, &queries, &result, &latch, i] {
      Stopwatch query_timer;
      result.answers[i] = system.Answer(queries[i]);
      result.latency_ms[i] = query_timer.ElapsedMillis();
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.done.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
  }
  result.wall_ms = batch_timer.ElapsedMillis();
  return result;
}

BatchErrorSummary BatchExecutor::Score(
    const BatchResult& result, const std::vector<ExactResult>& truths) {
  PASS_CHECK(result.answers.size() == truths.size());
  BatchErrorSummary summary;
  std::vector<double> rel_errors;
  rel_errors.reserve(truths.size());
  for (size_t i = 0; i < truths.size(); ++i) {
    if (!UsableGroundTruth(truths[i])) continue;
    rel_errors.push_back(
        RelativeError(result.answers[i].estimate.value, truths[i]));
  }
  summary.num_scored = rel_errors.size();
  if (!rel_errors.empty()) {
    summary.median_rel_error = Quantile(rel_errors, 0.5);
    summary.p95_rel_error = Quantile(rel_errors, 0.95);
  }
  return summary;
}

double LatencyQuantileMs(const BatchResult& result, double q) {
  if (result.latency_ms.empty()) return 0.0;
  return Quantile(result.latency_ms, q);
}

}  // namespace pass
