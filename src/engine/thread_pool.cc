#include "engine/thread_pool.h"

#include <utility>

namespace pass {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveNumThreads(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pass
