#include "engine/thread_pool.h"

#include <utility>

#include "common/macros.h"

namespace pass {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveNumThreads(num_threads)) {
  // Workers already run while the vector fills, but they never touch
  // workers_; the lock keeps the guarded write visible to the analysis.
  MutexLock join_lock(join_mu_);
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  // join_mu_ serializes concurrent Shutdown callers: joining the same
  // std::thread from two threads is UB, and an early-returning second
  // caller would break the "joins every worker" contract while the first
  // is still mid-join. The joinable() check makes repeat calls no-ops.
  MutexLock join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::IsShutdown() const {
  MutexLock lock(mu_);
  return shutdown_;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    // Submitting into a shut-down pool is a caller bug (the contract in
    // the header): loud in Debug, a defined rejection in Release.
    PASS_DCHECK(!shutdown_ && "ThreadPool::Submit after Shutdown");
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) task_ready_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace pass
