#include "engine/thread_pool.h"

#include <utility>

#include "common/macros.h"

namespace pass {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveNumThreads(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  // join_mu_ serializes concurrent Shutdown callers: joining the same
  // std::thread from two threads is UB, and an early-returning second
  // caller would break the "joins every worker" contract while the first
  // is still mid-join. The joinable() check makes repeat calls no-ops.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Submitting into a shut-down pool is a caller bug (the contract in
    // the header): loud in Debug, a defined rejection in Release.
    PASS_DCHECK(!shutdown_ && "ThreadPool::Submit after Shutdown");
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pass
