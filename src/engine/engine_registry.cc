#include "engine/engine_registry.h"

#include <utility>

#include "baselines/agg_plus_uniform.h"
#include "baselines/spn.h"
#include "baselines/stratified_sampling.h"
#include "baselines/uniform_sampling.h"
#include "core/synopsis.h"
#include "engine/exact_system.h"
#include "partition/builder.h"

namespace pass {
namespace {

using SystemResult = Result<std::unique_ptr<AqpSystem>>;

Status CheckDim(const Dataset& data, const EngineConfig& config) {
  if (config.dim >= data.NumPredDims()) {
    return Status::InvalidArgument("dim is out of range for the dataset");
  }
  return Status::Ok();
}

SystemResult MakeExact(const Dataset& data, const EngineConfig& /*config*/) {
  return std::unique_ptr<AqpSystem>(new ExactSystem(data));
}

SystemResult MakeUniform(const Dataset& data, const EngineConfig& config) {
  return std::unique_ptr<AqpSystem>(new UniformSamplingSystem(
      data, config.sample_rate, config.seed, config.estimator));
}

SystemResult MakeStratified(const Dataset& data, const EngineConfig& config) {
  Status dim_ok = CheckDim(data, config);
  if (!dim_ok.ok()) return dim_ok;
  return std::unique_ptr<AqpSystem>(new StratifiedSamplingSystem(
      data, config.partitions, config.sample_rate, config.dim, config.seed,
      config.estimator));
}

SystemResult MakeAggUniform(const Dataset& data, const EngineConfig& config) {
  Status dim_ok = CheckDim(data, config);
  if (!dim_ok.ok()) return dim_ok;
  AqpPlusPlusOptions options;
  options.num_partitions = config.partitions;
  options.sample_rate = config.sample_rate;
  options.dim = config.dim;
  options.opt_sample_size = config.opt_sample_size;
  options.seed = config.seed;
  options.estimator = config.estimator;
  return std::unique_ptr<AqpSystem>(new AggregatePlusUniformSystem(
      MakeAqpPlusPlus(data, options)));
}

SystemResult MakeSpn(const Dataset& data, const EngineConfig& config) {
  SpnSystem::Options options;
  options.train_fraction = config.spn_train_fraction;
  options.seed = config.seed;
  return std::unique_ptr<AqpSystem>(new SpnSystem(data, options));
}

SystemResult MakePass(const Dataset& data, const EngineConfig& config) {
  BuildOptions options;
  options.num_leaves = config.partitions;
  options.sample_rate = config.sample_rate;
  options.strategy = config.strategy;
  options.optimize_for = config.optimize_for;
  options.opt_sample_size = config.opt_sample_size;
  options.seed = config.seed;
  options.estimator = config.estimator;
  Result<Synopsis> built = BuildSynopsis(data, options);
  if (!built.ok()) return built.status();
  return std::unique_ptr<AqpSystem>(
      new Synopsis(std::move(built).value()));
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    r->Register("exact", MakeExact);
    r->Register("uniform", MakeUniform);
    r->Register("stratified", MakeStratified);
    r->Register("agg_uniform", MakeAggUniform);
    r->Register("spn", MakeSpn);
    r->Register("pass", MakePass);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<AqpSystem>> EngineRegistry::Create(
    const std::string& name, const Dataset& data,
    const EngineConfig& config) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no engine registered under \"" + name + "\"");
  }
  Status config_ok = config.Validate();
  if (!config_ok.ok()) return config_ok;
  if (data.NumRows() == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  return it->second(data, config);
}

bool EngineRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& entry : factories_) names.push_back(entry.first);
  return names;
}

}  // namespace pass
