#include "engine/engine_registry.h"

#include <utility>

#include "baselines/agg_plus_uniform.h"
#include "baselines/spn.h"
#include "baselines/stratified_sampling.h"
#include "baselines/uniform_sampling.h"
#include "cache/cached_system.h"
#include "core/synopsis.h"
#include "engine/exact_system.h"
#include "jit/kernel_cache.h"
#include "partition/builder.h"
#include "partition/ensemble.h"
#include "shard/sharded_synopsis.h"

namespace pass {
namespace {

using SystemResult = Result<std::unique_ptr<AqpSystem>>;

Status CheckDim(const Dataset& data, const EngineConfig& config) {
  if (config.dim >= data.NumPredDims()) {
    return Status::InvalidArgument("dim is out of range for the dataset");
  }
  return Status::Ok();
}

SystemResult MakeExact(const Dataset& data, const EngineConfig& config) {
  return std::unique_ptr<AqpSystem>(
      new ExactSystem(data, config.estimator.kernel_cache));
}

SystemResult MakeUniform(const Dataset& data, const EngineConfig& config) {
  return std::unique_ptr<AqpSystem>(new UniformSamplingSystem(
      data, config.sample_rate, config.seed, config.estimator));
}

SystemResult MakeStratified(const Dataset& data, const EngineConfig& config) {
  Status dim_ok = CheckDim(data, config);
  if (!dim_ok.ok()) return dim_ok;
  return std::unique_ptr<AqpSystem>(new StratifiedSamplingSystem(
      data, config.partitions, config.sample_rate, config.dim, config.seed,
      config.estimator));
}

SystemResult MakeAggUniform(const Dataset& data, const EngineConfig& config) {
  Status dim_ok = CheckDim(data, config);
  if (!dim_ok.ok()) return dim_ok;
  AqpPlusPlusOptions options;
  options.num_partitions = config.partitions;
  options.sample_rate = config.sample_rate;
  options.dim = config.dim;
  options.opt_sample_size = config.opt_sample_size;
  options.seed = config.seed;
  options.estimator = config.estimator;
  return std::unique_ptr<AqpSystem>(new AggregatePlusUniformSystem(
      MakeAqpPlusPlus(data, options)));
}

SystemResult MakeSpn(const Dataset& data, const EngineConfig& config) {
  SpnSystem::Options options;
  options.train_fraction = config.spn_train_fraction;
  options.seed = config.seed;
  return std::unique_ptr<AqpSystem>(new SpnSystem(data, options));
}

BuildOptions PassBuildOptions(const EngineConfig& config) {
  BuildOptions options;
  options.num_leaves = config.partitions;
  options.sample_rate = config.sample_rate;
  options.strategy = config.strategy;
  options.optimize_for = config.optimize_for;
  options.opt_sample_size = config.opt_sample_size;
  options.seed = config.seed;
  options.estimator = config.estimator;
  return options;
}

SystemResult MakePass(const Dataset& data, const EngineConfig& config) {
  Result<Synopsis> built = BuildSynopsis(data, PassBuildOptions(config));
  if (!built.ok()) return built.status();
  return std::unique_ptr<AqpSystem>(
      new Synopsis(std::move(built).value()));
}

SystemResult MakeShardedPass(const Dataset& data,
                             const EngineConfig& config) {
  ShardedBuildOptions options;
  options.shard.num_shards = config.num_shards;
  options.shard.strategy = config.shard_strategy;
  options.shard.dim = config.shard_dim;
  options.base = PassBuildOptions(config);
  Result<ShardedSynopsis> built = BuildShardedSynopsis(data, options);
  if (!built.ok()) return built.status();
  auto system =
      std::make_unique<ShardedSynopsis>(std::move(built).value());
  if (config.shard_parallel) {
    system->set_executor(&ParallelShardExecutor::Shared());
  }
  return std::unique_ptr<AqpSystem>(std::move(system));
}

SystemResult MakeEnsemble(const Dataset& data, const EngineConfig& config) {
  std::vector<std::vector<size_t>> templates = config.ensemble_templates;
  if (templates.empty()) {
    // Default: one 1-D member per predicate column.
    for (size_t d = 0; d < data.NumPredDims(); ++d) templates.push_back({d});
  }
  for (const auto& dims : templates) {
    for (const size_t dim : dims) {
      if (dim >= data.NumPredDims()) {
        return Status::InvalidArgument(
            "ensemble template dim is out of range for the dataset");
      }
    }
  }
  Result<SynopsisEnsemble> built =
      BuildEnsemble(data, templates, PassBuildOptions(config));
  if (!built.ok()) return built.status();
  return std::unique_ptr<AqpSystem>(
      new SynopsisEnsemble(std::move(built).value()));
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    r->Register("exact", MakeExact);
    r->Register("uniform", MakeUniform);
    r->Register("stratified", MakeStratified);
    r->Register("agg_uniform", MakeAggUniform);
    r->Register("spn", MakeSpn);
    r->Register("pass", MakePass);
    r->Register("sharded_pass", MakeShardedPass);
    r->Register("ensemble", MakeEnsemble);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<AqpSystem>> EngineRegistry::Create(
    const std::string& name, const Dataset& data,
    const EngineConfig& config) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no engine registered under \"" + name + "\"");
  }
  Status config_ok = config.Validate();
  if (!config_ok.ok()) return config_ok;
  if (data.NumRows() == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  // One specialized-kernel cache per engine, injected through the
  // estimator options every factory forwards: shards, ensemble members
  // and the exact path all share it, so a predicate compiled once serves
  // the whole engine. Tier dispatch is bit-identical to the generic
  // kernel, making this safe to install unconditionally when enabled.
  EngineConfig effective = config;
  if (config.jit.enabled) {
    effective.estimator.kernel_cache =
        std::make_shared<KernelCache>(config.jit);
  }
  Result<std::unique_ptr<AqpSystem>> built = it->second(data, effective);
  if (!built.ok() || !config.cache.enabled) return built;
  // Serve the engine behind the semantic answer cache. The wrapper is
  // transparent (bit-identical answers, forwarded Name/Costs) and attaches
  // covered-node tiers to whatever member trees the engine exposes.
  return std::unique_ptr<AqpSystem>(new CachedSystem(
      std::move(built).value(), data, config.cache));
}

bool EngineRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& entry : factories_) names.push_back(entry.first);
  return names;
}

}  // namespace pass
