#ifndef PASS_ENGINE_THREAD_POOL_H_
#define PASS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pass {

/// Fixed-size worker pool behind the serving layers. Deliberately simple:
/// a mutex-guarded FIFO is plenty for query-granularity tasks (each task
/// scans a sample), and the fixed size is what serving layers want —
/// the thread count is a capacity decision, not a per-batch one.
///
/// Shutdown contract: `Shutdown()` stops admission, runs every task that
/// was already queued, and joins the workers (the destructor calls it).
/// Submitting after shutdown has begun is a *defined* error, not UB: it
/// asserts in Debug builds and rejects the task (`Submit` returns false,
/// the task is destroyed unrun) in Release builds. Layers that need a
/// graceful answer for late work — e.g. QueryScheduler resolving a future
/// with an Unavailable status — must therefore gate their own admission
/// before handing tasks to the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  /// The single definition of the 0-means-hardware rule, shared by the
  /// constructor and by caches keyed on pool width (BatchExecutor::Shared).
  static size_t ResolveNumThreads(size_t requested) {
    if (requested != 0) return requested;
    const size_t hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw. Returns true if the task was
  /// accepted; after Shutdown() it asserts in Debug and returns false in
  /// Release (the task is destroyed without running — see the class
  /// comment).
  bool Submit(std::function<void()> task);

  /// Blocks until the pool is fully drained (every submitted task, from
  /// any submitter, has finished). With concurrent submitters this is a
  /// global quiescence point, not a per-caller barrier — BatchExecutor
  /// uses its own per-batch latch for exactly that reason.
  void Wait();

  /// Stops admission, drains the queue, and joins every worker. Idempotent
  /// and callable exactly like the destructor (which invokes it). After
  /// Shutdown returns, Submit rejects (see class comment) and Wait returns
  /// immediately.
  void Shutdown();

  /// True once Shutdown() has begun. Advisory only — a false return can be
  /// stale by the time the caller acts on it; the authoritative signal is
  /// Submit's return value.
  bool IsShutdown() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes concurrent Shutdown joins
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pass

#endif  // PASS_ENGINE_THREAD_POOL_H_
