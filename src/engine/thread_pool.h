#ifndef PASS_ENGINE_THREAD_POOL_H_
#define PASS_ENGINE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pass {

/// Fixed-size worker pool behind the serving layers. Deliberately simple:
/// a mutex-guarded FIFO is plenty for query-granularity tasks (each task
/// scans a sample), and the fixed size is what serving layers want —
/// the thread count is a capacity decision, not a per-batch one.
///
/// Shutdown contract: `Shutdown()` stops admission, runs every task that
/// was already queued, and joins the workers (the destructor calls it).
/// Submitting after shutdown has begun is a *defined* error, not UB: it
/// asserts in Debug builds and rejects the task (`Submit` returns false,
/// the task is destroyed unrun) in Release builds. Layers that need a
/// graceful answer for late work — e.g. QueryScheduler resolving a future
/// with an Unavailable status — must therefore gate their own admission
/// before handing tasks to the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  /// The single definition of the 0-means-hardware rule, shared by the
  /// constructor and by caches keyed on pool width (BatchExecutor::Shared).
  static size_t ResolveNumThreads(size_t requested) {
    if (requested != 0) return requested;
    const size_t hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Immutable after construction — readable without any lock even while
  /// Shutdown() is joining the workers (which workers_ itself is not:
  /// joining mutates the thread objects, so that vector is join_mu_
  /// territory; reading its size here used to race a concurrent join).
  size_t num_threads() const { return num_threads_; }

  /// Enqueues a task. Tasks must not throw. Returns true if the task was
  /// accepted; after Shutdown() it asserts in Debug and returns false in
  /// Release (the task is destroyed without running — see the class
  /// comment).
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the pool is fully drained (every submitted task, from
  /// any submitter, has finished). With concurrent submitters this is a
  /// global quiescence point, not a per-caller barrier — BatchExecutor
  /// uses its own per-batch latch for exactly that reason.
  void Wait() EXCLUDES(mu_);

  /// Stops admission, drains the queue, and joins every worker. Idempotent
  /// and callable exactly like the destructor (which invokes it). After
  /// Shutdown returns, Submit rejects (see class comment) and Wait returns
  /// immediately.
  void Shutdown() EXCLUDES(mu_, join_mu_);

  /// True once Shutdown() has begun. Advisory only — a false return can be
  /// stale by the time the caller acts on it; the authoritative signal is
  /// Submit's return value.
  bool IsShutdown() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  Mutex join_mu_ ACQUIRED_AFTER(mu_);  // serializes concurrent Shutdown joins
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + currently running tasks
  bool shutdown_ GUARDED_BY(mu_) = false;
  const size_t num_threads_;
  std::vector<std::thread> workers_ GUARDED_BY(join_mu_);
};

}  // namespace pass

#endif  // PASS_ENGINE_THREAD_POOL_H_
