#ifndef PASS_ENGINE_ENGINE_REGISTRY_H_
#define PASS_ENGINE_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/aqp_system.h"
#include "engine/engine_config.h"
#include "storage/dataset.h"

namespace pass {

/// Constructs any AQP method in this repository by name from one common
/// EngineConfig, so serving layers, benches and tests are decoupled from
/// per-method constructors. Built-in names: "exact", "uniform",
/// "stratified", "agg_uniform", "spn", "pass", "sharded_pass", "ensemble".
///
/// Constructed engines may keep a pointer to the dataset (exact, spn); the
/// dataset must outlive every engine built from it.
class EngineRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<AqpSystem>>(
      const Dataset& data, const EngineConfig& config)>;

  /// The process-wide registry, pre-populated with the built-in engines.
  static EngineRegistry& Global();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Builds the engine registered under `name`. Unknown names return
  /// kNotFound; invalid configurations return kInvalidArgument.
  Result<std::unique_ptr<AqpSystem>> Create(const std::string& name,
                                            const Dataset& data,
                                            const EngineConfig& config) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace pass

#endif  // PASS_ENGINE_ENGINE_REGISTRY_H_
