#ifndef PASS_ENGINE_EXACT_SYSTEM_H_
#define PASS_ENGINE_EXACT_SYSTEM_H_

#include <memory>
#include <string>
#include <utility>

#include "core/aqp_system.h"
#include "storage/dataset.h"

namespace pass {

/// Full-scan ground truth behind the AqpSystem interface, so the engine
/// registry (and anything batch-shaped built on it) can treat "no
/// approximation" as just another method. The dataset must outlive the
/// system; nothing is copied.
///
/// Not an anytime system (SupportsBudget() stays false): a full scan has
/// no bounds-midpoint fallback for skipped work, so a budget in the
/// options is ignored — answer in full, never truncate — and the
/// scheduler sheds an over-deadline exact query rather than budgeting it.
class ExactSystem final : public AqpSystem {
 public:
  /// `kernel_cache` optionally routes full scans through per-query
  /// specialized kernels (jit/kernel_cache.h; the registry installs one
  /// when EngineConfig::jit.enabled). Bit-identical to generic scans.
  explicit ExactSystem(const Dataset& data,
                       std::shared_ptr<KernelCache> kernel_cache = nullptr)
      : data_(&data), kernel_cache_(std::move(kernel_cache)) {}

  std::string Name() const override { return "Exact"; }
  SystemCosts Costs() const override;
  const KernelCache* ScanKernelCache() const override {
    return kernel_cache_.get();
  }

 protected:
  QueryAnswer AnswerImpl(const Query& query,
                         const AnswerOptions& options) const override;
  /// Fused: SUM, COUNT and AVG from one full scan instead of three.
  MultiAnswer AnswerMultiImpl(const Rect& predicate,
                              const AnswerOptions& options) const override;

 private:
  const Dataset* data_;
  std::shared_ptr<KernelCache> kernel_cache_;
};

}  // namespace pass

#endif  // PASS_ENGINE_EXACT_SYSTEM_H_
