#ifndef PASS_ENGINE_ENGINE_CONFIG_H_
#define PASS_ENGINE_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/cache_config.h"
#include "common/status.h"
#include "core/estimator.h"
#include "core/query.h"
#include "jit/jit_config.h"
#include "partition/build_options.h"
#include "shard/shard_options.h"

namespace pass {

/// How a serving deadline is converted into a WorkBudget at dispatch. The
/// scheduler maintains an EWMA of the observed per-scan-unit cost (run
/// milliseconds per sample row scanned, fed by every budget-capable query
/// it completes) and grants an over-deadline-prone query
///   floor(remaining_ms * safety_factor / ewma_unit_cost_ms)
/// scan units, with the deadline itself attached as the soft cutoff.
/// Shared by SchedulerOptions and anything else pricing deadlines.
///
/// This struct itself is immutable configuration (copied into the
/// scheduler at construction). The *learned* EWMA state it parameterizes
/// — QueryScheduler::unit_cost_ms_ / overhead_ms_ — is cross-thread
/// shared and GUARDED_BY(calibration_mu_); all reads go through the
/// locked Calibrated*Ms() accessors, never a raw member load.
struct BudgetCalibration {
  /// Weight of the newest observation in the EWMA. 0 disables learning
  /// (the initial guess is used forever).
  double ewma_alpha = 0.2;

  /// Per-scan-unit cost assumed before the first observation, in ms. The
  /// default (~50ns/row) matches a scalar predicate-match loop on current
  /// hardware; it only has to be in the right ballpark — the EWMA takes
  /// over from the first completed query.
  double initial_unit_cost_ms = 5e-5;

  /// Fraction of the remaining time the unit budget may plan to spend;
  /// the rest absorbs walk/merge overhead and estimation noise. The soft
  /// deadline backstops whatever this underestimates.
  double safety_factor = 0.5;

  /// Fixed per-query overhead assumed before the first observation, in ms
  /// (MCF walk + split + merge — everything a zero-budget answer still
  /// pays). Learned as an EWMA of max(run_ms - units * unit_cost, 0) from
  /// every completed budget-capable query. The admission controller's
  /// kRejectInfeasible policy sheds a query only when the remaining time
  /// at admission cannot even cover this floor — i.e. when the zero-budget
  /// bounds-midpoint answer would itself miss the deadline.
  double initial_overhead_ms = 0.05;
};

/// One configuration shared by every engine the registry can construct, so
/// a serving layer can switch methods without per-method plumbing. Each
/// engine reads the subset of fields it understands and ignores the rest.
struct EngineConfig {
  /// Overall sampling budget as a fraction of the dataset (US, ST,
  /// AQP++, PASS). The paper's experiments default to 0.5%.
  double sample_rate = 0.005;

  /// Number of leaf partitions / strata (ST, AQP++, PASS).
  size_t partitions = 64;

  /// Predicate dimension used by the 1-D methods (ST stratification and
  /// the AQP++ hill climb).
  size_t dim = 0;

  /// Optimization-sample size for the partitioning optimizers.
  size_t opt_sample_size = 10'000;

  /// Aggregate whose worst-case variance the PASS optimizer minimizes.
  AggregateType optimize_for = AggregateType::kSum;

  /// Partitioning strategy for the PASS synopsis.
  PartitionStrategy strategy = PartitionStrategy::kAdp;

  /// Fraction of rows the SPN baseline trains on (DeepDB-10% uses 0.1).
  double spn_train_fraction = 1.0;

  /// Number of data shards for the "sharded_pass" engine; partitions and
  /// the sampling budget are split fair-total across them. 1 = unsharded.
  size_t num_shards = 1;

  /// How rows are assigned to shards (see shard/shard_planner.h).
  ShardStrategy shard_strategy = ShardStrategy::kRoundRobin;

  /// Predicate column the range/hash shard strategies key on.
  size_t shard_dim = 0;

  /// Fan per-shard query work onto the shared ParallelShardExecutor pool
  /// (answers are bit-identical to the sequential path either way).
  bool shard_parallel = true;

  /// Query templates for the "ensemble" engine: one PASS member is built
  /// per template over exactly these partition dims, with a fair-total
  /// budget split. Empty = one 1-D member per predicate column.
  std::vector<std::vector<size_t>> ensemble_templates;

  /// Estimator configuration shared by the sampling-based engines.
  EstimatorOptions estimator;

  /// Semantic answer cache the registry wraps the engine in when enabled
  /// (see cache/semantic_answer_cache.h). Off by default; cached answers
  /// are bit-identical to uncached ones, so this is purely a latency
  /// knob.
  CacheConfig cache;

  /// Per-query specialized scan kernels (see jit/kernel_cache.h). When
  /// enabled the registry installs one KernelCache per engine (shared by
  /// its shards) and every scan dispatches through the best available
  /// tier. Purely a latency knob: specialized scans are bit-identical to
  /// generic ones.
  JitConfig jit;

  uint64_t seed = 42;

  /// Validates the fields every engine depends on. Factories run this
  /// before construction so misconfiguration surfaces as a Status, not a
  /// crash deep inside a builder.
  Status Validate() const {
    if (!(sample_rate > 0.0) || sample_rate > 1.0) {
      return Status::InvalidArgument("sample_rate must be in (0, 1]");
    }
    if (partitions == 0) {
      return Status::InvalidArgument("partitions must be >= 1");
    }
    if (opt_sample_size == 0) {
      return Status::InvalidArgument("opt_sample_size must be >= 1");
    }
    if (!(spn_train_fraction > 0.0) || spn_train_fraction > 1.0) {
      return Status::InvalidArgument("spn_train_fraction must be in (0, 1]");
    }
    if (num_shards == 0) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    for (const auto& dims : ensemble_templates) {
      if (dims.empty()) {
        return Status::InvalidArgument(
            "ensemble templates must name at least one dim");
      }
    }
    if (cache.enabled && cache.max_exact_entries == 0) {
      return Status::InvalidArgument(
          "an enabled cache needs max_exact_entries >= 1");
    }
    if (cache.ttl.count() < 0) {
      return Status::InvalidArgument("cache ttl must be non-negative");
    }
    if (jit.enabled && jit.max_cached_kernels == 0) {
      return Status::InvalidArgument(
          "an enabled jit needs max_cached_kernels >= 1");
    }
    return Status::Ok();
  }
};

}  // namespace pass

#endif  // PASS_ENGINE_ENGINE_CONFIG_H_
