#include "engine/query_scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "jit/kernel_cache.h"
#include "stats/confidence.h"

namespace pass {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MillisBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One admitted submission. Heap-allocated and owned by the pool closure:
/// the submitting thread may abandon its future (or passed only a
/// callback), so the task cannot live on the submitter's stack the way
/// BatchExecutor's old per-batch latch state did.
struct QueryScheduler::Task {
  const AqpSystem* system = nullptr;
  Query query;
  uint64_t ticket = 0;
  SteadyClock::time_point admitted;
  std::optional<SteadyClock::time_point> deadline;
  std::optional<StoppingCondition> until;
  AdmissionPolicy admission = AdmissionPolicy::kAlwaysAnswer;
  bool want_future = false;
  std::promise<ScheduledAnswer> promise;
  Callback done;
};

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : max_in_flight_(options.max_in_flight),
      calibration_(options.calibration),
      unit_cost_ms_(options.calibration.initial_unit_cost_ms),
      overhead_ms_(options.calibration.initial_overhead_ms),
      pool_(options.num_threads) {}

QueryScheduler::QueryScheduler(size_t num_threads)
    : QueryScheduler(SchedulerOptions{num_threads, /*max_in_flight=*/0, {}}) {}

QueryScheduler::~QueryScheduler() { Shutdown(); }

QueryScheduler& QueryScheduler::Shared(size_t num_threads) {
  // Normalize before keying the cache so Shared(0) and an explicit
  // Shared(hardware_concurrency) share one pool.
  num_threads = ThreadPool::ResolveNumThreads(num_threads);
  static Mutex* mu = new Mutex();
  static auto* schedulers =
      new std::map<size_t, std::unique_ptr<QueryScheduler>>();
  MutexLock lock(*mu);
  std::unique_ptr<QueryScheduler>& scheduler = (*schedulers)[num_threads];
  if (scheduler == nullptr) {
    scheduler = std::make_unique<QueryScheduler>(num_threads);
  }
  return *scheduler;
}

size_t QueryScheduler::InFlight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

std::future<ScheduledAnswer> QueryScheduler::Submit(
    const AqpSystem& system, Query query, const SubmitOptions& options) {
  return SubmitInternal(system, std::move(query), options, /*done=*/nullptr,
                        /*want_future=*/true);
}

void QueryScheduler::Submit(const AqpSystem& system, Query query,
                            const SubmitOptions& options, Callback done) {
  PASS_CHECK(done != nullptr);
  (void)SubmitInternal(system, std::move(query), options, std::move(done),
                       /*want_future=*/false);
}

std::future<ScheduledAnswer> QueryScheduler::AnswerUntil(
    const AqpSystem& system, Query query, const StoppingCondition& condition,
    const SubmitOptions& options) {
  SubmitOptions progressive = options;
  progressive.until = condition;
  return SubmitInternal(system, std::move(query), progressive,
                        /*done=*/nullptr, /*want_future=*/true);
}

void QueryScheduler::AnswerUntil(const AqpSystem& system, Query query,
                                 const StoppingCondition& condition,
                                 const SubmitOptions& options, Callback done) {
  PASS_CHECK(done != nullptr);
  SubmitOptions progressive = options;
  progressive.until = condition;
  (void)SubmitInternal(system, std::move(query), progressive, std::move(done),
                       /*want_future=*/false);
}

std::future<ScheduledAnswer> QueryScheduler::SubmitInternal(
    const AqpSystem& system, Query query, const SubmitOptions& options,
    Callback done, bool want_future) {
  auto task = std::make_unique<Task>();
  task->system = &system;
  task->query = std::move(query);
  task->until = options.until;
  task->admission = options.admission;
  task->want_future = want_future;
  task->done = std::move(done);
  std::future<ScheduledAnswer> future;
  if (want_future) future = task->promise.get_future();

  // Admission control: shed before consuming a queue slot when even the
  // zero-budget answer could not make the deadline (the whole relative
  // deadline is below the calibrated fixed per-query overhead). The same
  // check runs again at dispatch with the queue wait spent.
  if (options.admission == AdmissionPolicy::kRejectInfeasible &&
      options.deadline && system.SupportsBudget()) {
    const double deadline_ms =
        std::chrono::duration<double, std::milli>(*options.deadline).count();
    if (deadline_ms <= CalibratedOverheadMs()) {
      ScheduledAnswer result;
      result.status = Status::DeadlineExceeded(
          "deadline below the calibrated zero-budget overhead; rejected at "
          "admission");
      if (task->want_future) task->promise.set_value(result);
      if (task->done) task->done(std::move(result));
      return future;
    }
  }

  bool rejected = false;
  {
    MutexLock lock(mu_);
    // Backpressure: a bounded scheduler blocks the producer until a slot
    // frees. Shutdown unblocks every waiting producer into rejection.
    if (max_in_flight_ > 0) {
      while (!shutdown_ && in_flight_ >= max_in_flight_) {
        slot_free_.Wait(mu_);
      }
    }
    if (shutdown_) {
      rejected = true;
    } else {
      task->ticket = ++next_ticket_;
      task->admitted = SteadyClock::now();
      if (options.deadline) {
        task->deadline = task->admitted + *options.deadline;
      }
      ++in_flight_;
    }
  }

  if (rejected) {
    ScheduledAnswer result;
    result.status =
        Status::Unavailable("QueryScheduler is shut down; query rejected");
    if (task->want_future) task->promise.set_value(result);
    if (task->done) task->done(std::move(result));
    return future;
  }

  Task* raw = task.release();
  const bool accepted = pool_.Submit([this, raw] { RunTask(raw); });
  // Admission is gated by shutdown_ above and Shutdown() drains before the
  // pool ever stops, so the pool can never have refused the task.
  PASS_CHECK(accepted);
  return future;
}

namespace {

/// Observations from runs that scanned fewer units than this are ignored:
/// run_ms includes the fixed per-query overhead (MCF walk, split, merge),
/// so a small-unit run reports a per-unit cost inflated by orders of
/// magnitude. Feeding those back would ratchet the EWMA upward and shrink
/// every later grant — a positive feedback that collapses sustained
/// tight-deadline traffic to zero-budget answers. Above this many units
/// the fixed overhead amortizes into the noise.
constexpr uint64_t kMinUnitsToCalibrate = 64;

/// Scan throughput of one run (0 when nothing was scanned or the clock
/// read 0). Surfaced in ScheduledAnswer next to the EWMA the same
/// (run_ms, units) observation feeds, so operators can sanity-check the
/// learned per-unit cost against the kernel's actual rows/sec.
double RowsPerSec(uint64_t rows, double run_ms) {
  return rows > 0 && run_ms > 0.0
             ? static_cast<double>(rows) * 1e3 / run_ms
             : 0.0;
}

}  // namespace

double QueryScheduler::CalibratedUnitCostMs() const {
  MutexLock lock(calibration_mu_);
  return unit_cost_ms_;
}

double QueryScheduler::CalibratedOverheadMs() const {
  MutexLock lock(calibration_mu_);
  return overhead_ms_;
}

void QueryScheduler::ObserveUnitCost(double run_ms, uint64_t units) {
  if (!(run_ms > 0.0)) return;
  MutexLock lock(calibration_mu_);
  if (units >= kMinUnitsToCalibrate) {
    const double observed = run_ms / static_cast<double>(units);
    unit_cost_ms_ += calibration_.ewma_alpha * (observed - unit_cost_ms_);
  }
  // The per-query overhead floor learns from every run, including the
  // small-unit ones the per-unit EWMA must ignore: whatever the units
  // cannot explain at the current per-unit cost is fixed overhead.
  const double observed_overhead =
      std::max(run_ms - static_cast<double>(units) * unit_cost_ms_, 0.0);
  overhead_ms_ += calibration_.ewma_alpha * (observed_overhead - overhead_ms_);
}

void QueryScheduler::RunTask(Task* raw) {
  std::unique_ptr<Task> task(raw);
  const SteadyClock::time_point dispatched = SteadyClock::now();

  ScheduledAnswer result;
  result.ticket = task->ticket;
  result.queue_ms = MillisBetween(task->admitted, dispatched);
  const bool budgetable = task->system->SupportsBudget();
  const bool anytime = task->deadline && budgetable;
  const bool progressive = task->until && budgetable;
  bool infeasible = false;
  if (anytime && task->admission == AdmissionPolicy::kRejectInfeasible) {
    // Dispatch-time re-check of the admission gate: the queue wait may
    // have eaten the margin that existed at admission.
    const double remaining_ms = dispatched < *task->deadline
                                    ? MillisBetween(dispatched, *task->deadline)
                                    : 0.0;
    infeasible = remaining_ms <= CalibratedOverheadMs();
  }
  if (task->deadline && dispatched > *task->deadline && !anytime) {
    // Expired while queued on a system that cannot truncate: the query is
    // never run, so an overloaded scheduler sheds the work itself, not
    // just the answer.
    result.status = Status::DeadlineExceeded(
        "deadline expired before the query was dispatched");
  } else if (infeasible) {
    result.status = Status::DeadlineExceeded(
        "remaining time below the calibrated zero-budget overhead; query "
        "shed at dispatch");
  } else if (progressive) {
    RunProgressive(task.get(), &result);
  } else if (anytime) {
    // Deadline-to-budget conversion: grant whatever the remaining time
    // buys at the calibrated per-unit cost (zero for a query that expired
    // in the queue — it still gets the pure bounds-midpoint answer), with
    // the deadline itself as the soft cutoff against miscalibration.
    AnswerOptions options;
    uint64_t granted = 0;
    if (dispatched < *task->deadline) {
      const double remaining_ms = MillisBetween(dispatched, *task->deadline);
      // Floor the learned cost at 1ns/unit so a degenerate calibration
      // (zero initial cost, runaway alpha) cannot blow the quotient up,
      // and saturate the double->uint64_t conversion: casting a value
      // beyond the target range is UB (UBSan float-cast-overflow).
      const double unit_cost_ms = std::max(CalibratedUnitCostMs(), 1e-6);
      const double raw =
          remaining_ms * calibration_.safety_factor / unit_cost_ms;
      constexpr double kMaxGrant = 9e18;  // < 2^63, safely castable
      granted = static_cast<uint64_t>(std::min(std::max(raw, 0.0),
                                               kMaxGrant));
      options.budget.soft_deadline = *task->deadline;
    }
    options.budget.max_scan_units = granted;
    // Any scheduler-level randomness must derive from the ticket (see
    // ScheduledAnswer::ticket): here, the budget's spend-priority seed.
    options.seed = task->ticket;
    const SteadyClock::time_point started = SteadyClock::now();
    result.answer = task->system->Answer(task->query, options);
    result.run_ms = MillisBetween(started, SteadyClock::now());
    result.budget_total = granted;
    result.budget_used = result.answer.sample_rows_scanned;
    result.truncated = result.answer.truncated;
    result.scan_rows_per_sec = RowsPerSec(result.budget_used, result.run_ms);
    ObserveUnitCost(result.run_ms, result.budget_used);
  } else {
    const SteadyClock::time_point started = SteadyClock::now();
    result.answer = task->system->Answer(task->query);
    result.run_ms = MillisBetween(started, SteadyClock::now());
    result.scan_rows_per_sec =
        RowsPerSec(result.answer.sample_rows_scanned, result.run_ms);
    // Deadline-free traffic still warms the deadline-pricing EWMA (scan
    // units consumed are reported by every budget-capable system).
    if (task->system->SupportsBudget()) {
      ObserveUnitCost(result.run_ms, result.answer.sample_rows_scanned);
    }
  }
  result.total_ms = MillisBetween(task->admitted, SteadyClock::now());
  if (const SemanticAnswerCache* cache = task->system->AnswerCache()) {
    result.cache_enabled = true;
    result.cache = cache->Stats();
  }
  if (const KernelCache* kernels = task->system->ScanKernelCache()) {
    result.jit_enabled = true;
    result.kernel = kernels->Stats();
  }

  if (task->want_future) task->promise.set_value(result);
  if (task->done) task->done(std::move(result));

  {
    MutexLock lock(mu_);
    --in_flight_;
  }
  // Wakes both backpressured producers and Drain()/Shutdown() waiters.
  slot_free_.NotifyAll();
}

namespace {

/// The aggregate of a fused MultiAnswer that a progressive submission
/// refines. Only SUM/COUNT/AVG have a fused resumable path.
const QueryAnswer* FusedComponent(const MultiAnswer& multi,
                                  AggregateType agg) {
  switch (agg) {
    case AggregateType::kSum:
      return &multi.sum;
    case AggregateType::kCount:
      return &multi.count;
    case AggregateType::kAvg:
      return &multi.avg;
    default:
      return nullptr;
  }
}

}  // namespace

void QueryScheduler::RunProgressive(Task* task, ScheduledAnswer* result) {
  const StoppingCondition& condition = *task->until;
  const double lambda = LambdaForConfidence(condition.confidence);
  const AggregateType agg = task->query.agg;
  const SteadyClock::time_point started = SteadyClock::now();

  std::unique_ptr<EstimationSession> session;
  const bool fused = agg == AggregateType::kSum ||
                     agg == AggregateType::kCount ||
                     agg == AggregateType::kAvg;
  if (fused) {
    // Ticket-derived seed, like the anytime path (see ScheduledAnswer).
    session = task->system->StartSession(task->query.predicate, task->ticket);
  }
  if (session == nullptr) {
    // No resumable path for this aggregate/system: answer once, in full.
    // The submission still resolves normally, just without refinements.
    result->answer = task->system->Answer(task->query);
    result->run_ms = MillisBetween(started, SteadyClock::now());
    result->scan_rows_per_sec =
        RowsPerSec(result->answer.sample_rows_scanned, result->run_ms);
    if (task->system->SupportsBudget()) {
      ObserveUnitCost(result->run_ms, result->answer.sample_rows_scanned);
    }
    return;
  }

  const uint64_t plan = session->PlanCost();
  const uint64_t step =
      condition.min_step_units > 0
          ? condition.min_step_units
          : std::max<uint64_t>(64, plan / 16);

  // The refinement ladder: 0, step, 2*step, 4*step, ... Zero first — the
  // bounds-only answer is free and sometimes already tight enough; then
  // doubling keeps the total number of reassemblies logarithmic in the
  // plan while each AdvanceTo scans only the delta units.
  uint64_t cap = 0;
  uint32_t refinements = 0;
  while (true) {
    const MultiAnswer multi = session->AdvanceTo(cap);
    const QueryAnswer& answer = *FusedComponent(multi, agg);
    const bool tight =
        condition.target_ci_width > 0.0 &&
        answer.estimate.HalfWidth(lambda) <= condition.target_ci_width;
    const bool out_of_time =
        task->deadline && SteadyClock::now() >= *task->deadline;
    const bool final_step = tight || out_of_time || session->Exhausted();

    result->answer = answer;
    result->budget_total = std::min(cap, plan);
    result->budget_used = session->UnitsScanned();
    result->truncated = answer.truncated;
    result->refinements = refinements;
    result->is_final = final_step;
    if (final_step) break;

    if (task->done) {
      // Stream the intermediate answer; only the final one resolves the
      // submission (and is the only one a future ever sees).
      ScheduledAnswer intermediate = *result;
      const SteadyClock::time_point now = SteadyClock::now();
      intermediate.run_ms = MillisBetween(started, now);
      intermediate.total_ms = MillisBetween(task->admitted, now);
      intermediate.scan_rows_per_sec =
          RowsPerSec(intermediate.budget_used, intermediate.run_ms);
      task->done(intermediate);
    }
    cap = cap == 0 ? step : cap * 2;
    ++refinements;
  }
  result->run_ms = MillisBetween(started, SteadyClock::now());
  result->scan_rows_per_sec =
      RowsPerSec(result->budget_used, result->run_ms);
  ObserveUnitCost(result->run_ms, result->budget_used);
}

void QueryScheduler::Drain() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) slot_free_.Wait(mu_);
}

void QueryScheduler::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  slot_free_.NotifyAll();  // release producers blocked on backpressure
  // Always drain — even on a repeat call — so *every* caller returns only
  // once in-flight work is done. Shutdown is the teardown fence callers
  // rely on before destroying the engines they submitted, so a concurrent
  // second caller must not return early while queries still run.
  Drain();
}

}  // namespace pass
