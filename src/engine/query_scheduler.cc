#include "engine/query_scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"

namespace pass {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MillisBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One admitted submission. Heap-allocated and owned by the pool closure:
/// the submitting thread may abandon its future (or passed only a
/// callback), so the task cannot live on the submitter's stack the way
/// BatchExecutor's old per-batch latch state did.
struct QueryScheduler::Task {
  const AqpSystem* system = nullptr;
  Query query;
  uint64_t ticket = 0;
  SteadyClock::time_point admitted;
  std::optional<SteadyClock::time_point> deadline;
  bool want_future = false;
  std::promise<ScheduledAnswer> promise;
  Callback done;
};

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : max_in_flight_(options.max_in_flight),
      calibration_(options.calibration),
      unit_cost_ms_(options.calibration.initial_unit_cost_ms),
      pool_(options.num_threads) {}

QueryScheduler::QueryScheduler(size_t num_threads)
    : QueryScheduler(SchedulerOptions{num_threads, /*max_in_flight=*/0, {}}) {}

QueryScheduler::~QueryScheduler() { Shutdown(); }

QueryScheduler& QueryScheduler::Shared(size_t num_threads) {
  // Normalize before keying the cache so Shared(0) and an explicit
  // Shared(hardware_concurrency) share one pool.
  num_threads = ThreadPool::ResolveNumThreads(num_threads);
  static std::mutex* mu = new std::mutex();
  static auto* schedulers =
      new std::map<size_t, std::unique_ptr<QueryScheduler>>();
  std::lock_guard<std::mutex> lock(*mu);
  std::unique_ptr<QueryScheduler>& scheduler = (*schedulers)[num_threads];
  if (scheduler == nullptr) {
    scheduler = std::make_unique<QueryScheduler>(num_threads);
  }
  return *scheduler;
}

size_t QueryScheduler::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::future<ScheduledAnswer> QueryScheduler::Submit(
    const AqpSystem& system, Query query, const SubmitOptions& options) {
  return SubmitInternal(system, std::move(query), options, /*done=*/nullptr,
                        /*want_future=*/true);
}

void QueryScheduler::Submit(const AqpSystem& system, Query query,
                            const SubmitOptions& options, Callback done) {
  PASS_CHECK(done != nullptr);
  (void)SubmitInternal(system, std::move(query), options, std::move(done),
                       /*want_future=*/false);
}

std::future<ScheduledAnswer> QueryScheduler::SubmitInternal(
    const AqpSystem& system, Query query, const SubmitOptions& options,
    Callback done, bool want_future) {
  auto task = std::make_unique<Task>();
  task->system = &system;
  task->query = std::move(query);
  task->want_future = want_future;
  task->done = std::move(done);
  std::future<ScheduledAnswer> future;
  if (want_future) future = task->promise.get_future();

  bool rejected = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure: a bounded scheduler blocks the producer until a slot
    // frees. Shutdown unblocks every waiting producer into rejection.
    if (max_in_flight_ > 0) {
      slot_free_.wait(lock, [this] {
        return shutdown_ || in_flight_ < max_in_flight_;
      });
    }
    if (shutdown_) {
      rejected = true;
    } else {
      task->ticket = ++next_ticket_;
      task->admitted = SteadyClock::now();
      if (options.deadline) {
        task->deadline = task->admitted + *options.deadline;
      }
      ++in_flight_;
    }
  }

  if (rejected) {
    ScheduledAnswer result;
    result.status =
        Status::Unavailable("QueryScheduler is shut down; query rejected");
    if (task->want_future) task->promise.set_value(result);
    if (task->done) task->done(std::move(result));
    return future;
  }

  Task* raw = task.release();
  const bool accepted = pool_.Submit([this, raw] { RunTask(raw); });
  // Admission is gated by shutdown_ above and Shutdown() drains before the
  // pool ever stops, so the pool can never have refused the task.
  PASS_CHECK(accepted);
  return future;
}

namespace {

/// Observations from runs that scanned fewer units than this are ignored:
/// run_ms includes the fixed per-query overhead (MCF walk, split, merge),
/// so a small-unit run reports a per-unit cost inflated by orders of
/// magnitude. Feeding those back would ratchet the EWMA upward and shrink
/// every later grant — a positive feedback that collapses sustained
/// tight-deadline traffic to zero-budget answers. Above this many units
/// the fixed overhead amortizes into the noise.
constexpr uint64_t kMinUnitsToCalibrate = 64;

}  // namespace

double QueryScheduler::CalibratedUnitCostMs() const {
  std::lock_guard<std::mutex> lock(calibration_mu_);
  return unit_cost_ms_;
}

void QueryScheduler::ObserveUnitCost(double run_ms, uint64_t units) {
  if (units < kMinUnitsToCalibrate || !(run_ms > 0.0)) return;
  const double observed = run_ms / static_cast<double>(units);
  std::lock_guard<std::mutex> lock(calibration_mu_);
  unit_cost_ms_ += calibration_.ewma_alpha * (observed - unit_cost_ms_);
}

void QueryScheduler::RunTask(Task* raw) {
  std::unique_ptr<Task> task(raw);
  const SteadyClock::time_point dispatched = SteadyClock::now();

  ScheduledAnswer result;
  result.ticket = task->ticket;
  result.queue_ms = MillisBetween(task->admitted, dispatched);
  const bool anytime = task->deadline && task->system->SupportsBudget();
  if (task->deadline && dispatched > *task->deadline && !anytime) {
    // Expired while queued on a system that cannot truncate: the query is
    // never run, so an overloaded scheduler sheds the work itself, not
    // just the answer.
    result.status = Status::DeadlineExceeded(
        "deadline expired before the query was dispatched");
  } else if (anytime) {
    // Deadline-to-budget conversion: grant whatever the remaining time
    // buys at the calibrated per-unit cost (zero for a query that expired
    // in the queue — it still gets the pure bounds-midpoint answer), with
    // the deadline itself as the soft cutoff against miscalibration.
    AnswerOptions options;
    uint64_t granted = 0;
    if (dispatched < *task->deadline) {
      const double remaining_ms = MillisBetween(dispatched, *task->deadline);
      // Floor the learned cost at 1ns/unit so a degenerate calibration
      // (zero initial cost, runaway alpha) cannot blow the quotient up,
      // and saturate the double->uint64_t conversion: casting a value
      // beyond the target range is UB (UBSan float-cast-overflow).
      const double unit_cost_ms = std::max(CalibratedUnitCostMs(), 1e-6);
      const double raw =
          remaining_ms * calibration_.safety_factor / unit_cost_ms;
      constexpr double kMaxGrant = 9e18;  // < 2^63, safely castable
      granted = static_cast<uint64_t>(std::min(std::max(raw, 0.0),
                                               kMaxGrant));
      options.budget.soft_deadline = *task->deadline;
    }
    options.budget.max_scan_units = granted;
    // Any scheduler-level randomness must derive from the ticket (see
    // ScheduledAnswer::ticket): here, the budget's spend-priority seed.
    options.seed = task->ticket;
    const SteadyClock::time_point started = SteadyClock::now();
    result.answer = task->system->Answer(task->query, options);
    result.run_ms = MillisBetween(started, SteadyClock::now());
    result.budget_total = granted;
    result.budget_used = result.answer.sample_rows_scanned;
    result.truncated = result.answer.truncated;
    ObserveUnitCost(result.run_ms, result.budget_used);
  } else {
    const SteadyClock::time_point started = SteadyClock::now();
    result.answer = task->system->Answer(task->query);
    result.run_ms = MillisBetween(started, SteadyClock::now());
    // Deadline-free traffic still warms the deadline-pricing EWMA (scan
    // units consumed are reported by every budget-capable system).
    if (task->system->SupportsBudget()) {
      ObserveUnitCost(result.run_ms, result.answer.sample_rows_scanned);
    }
  }
  result.total_ms = MillisBetween(task->admitted, SteadyClock::now());

  if (task->want_future) task->promise.set_value(result);
  if (task->done) task->done(std::move(result));

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  // Wakes both backpressured producers and Drain()/Shutdown() waiters.
  slot_free_.notify_all();
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  slot_free_.wait(lock, [this] { return in_flight_ == 0; });
}

void QueryScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_free_.notify_all();  // release producers blocked on backpressure
  // Always drain — even on a repeat call — so *every* caller returns only
  // once in-flight work is done. Shutdown is the teardown fence callers
  // rely on before destroying the engines they submitted, so a concurrent
  // second caller must not return early while queries still run.
  Drain();
}

}  // namespace pass
