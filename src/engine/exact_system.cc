#include "engine/exact_system.h"

#include "core/exact.h"

namespace pass {

QueryAnswer ExactSystem::AnswerImpl(const Query& query,
                                    const AnswerOptions& options) const {
  (void)options;  // exact scans answer in full; budgets don't apply
  const ExactResult truth = ExactAnswer(*data_, query, kernel_cache_.get());
  QueryAnswer answer;
  answer.estimate.value = truth.value;
  answer.estimate.variance = 0.0;
  answer.exact = true;
  answer.hard_lb = truth.value;
  answer.hard_ub = truth.value;
  answer.population_rows = data_->NumRows();
  answer.sample_rows_scanned = data_->NumRows();
  answer.matched_sample_rows = truth.matched;
  return answer;
}

MultiAnswer ExactSystem::AnswerMultiImpl(const Rect& predicate,
                                         const AnswerOptions& options) const {
  (void)options;
  const ExactMultiResult truth =
      ExactMultiAnswer(*data_, predicate, kernel_cache_.get());
  MultiAnswer out;
  out.fused = true;  // deterministic answers: the zero covariance is exact
  const auto fill = [&](double value) {
    QueryAnswer answer;
    answer.estimate.value = value;
    answer.estimate.variance = 0.0;
    answer.exact = true;
    answer.hard_lb = value;
    answer.hard_ub = value;
    answer.population_rows = data_->NumRows();
    answer.sample_rows_scanned = data_->NumRows();
    answer.matched_sample_rows = truth.matched;
    return answer;
  };
  out.sum = fill(truth.sum);
  out.count = fill(static_cast<double>(truth.matched));
  out.avg = fill(truth.avg);
  return out;
}

SystemCosts ExactSystem::Costs() const {
  SystemCosts costs;
  costs.build_seconds = 0.0;  // nothing is precomputed
  costs.storage_bytes = data_->SizeBytes();
  costs.resident_bytes = data_->SizeBytes();
  return costs;
}

}  // namespace pass
