#ifndef PASS_ENGINE_QUERY_SCHEDULER_H_
#define PASS_ENGINE_QUERY_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>

#include "cache/semantic_answer_cache.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/answer.h"
#include "core/aqp_system.h"
#include "core/query.h"
#include "engine/engine_config.h"
#include "engine/thread_pool.h"
#include "jit/jit_config.h"

namespace pass {

/// What the scheduler resolves a submission with. `answer` is meaningful
/// iff `status.ok()`; otherwise the query was never run (it expired in the
/// queue on a non-anytime system, or was rejected at shutdown) and the
/// timing fields describe only the time it spent waiting.
struct ScheduledAnswer {
  Status status;       // Ok | kDeadlineExceeded | kUnavailable
  QueryAnswer answer;  // valid iff status.ok()

  /// Anytime accounting, meaningful only for deadline submissions to
  /// budget-capable systems (zero otherwise): the scan-unit budget the
  /// scheduler granted at dispatch (0 for a query that expired in the
  /// queue and was answered from bounds alone), the units the estimator
  /// actually consumed, and whether the budget left planned work
  /// unexecuted (the answer is then valid but wider than the full one).
  uint64_t budget_total = 0;
  uint64_t budget_used = 0;
  bool truncated = false;

  /// Scan throughput this run achieved: sample rows scanned per second of
  /// run_ms (0 when the run scanned nothing — covered/zero-budget answers
  /// — or for non-budget-capable systems that report no scan work). The
  /// human-readable twin of the deadline-pricing EWMA's (run_ms, units)
  /// observation: per-unit cost in ms ≈ 1e3 / scan_rows_per_sec, so a
  /// drifting calibration is visible directly in submission results.
  double scan_rows_per_sec = 0.0;

  /// Progressive (AnswerUntil) accounting. Intermediate answers streamed
  /// through the callback carry is_final = false; exactly one final answer
  /// (is_final = true) resolves the submission — it is the only one a
  /// future ever sees. `refinements` counts the AdvanceTo steps taken
  /// before this answer was produced (0 for non-progressive submissions
  /// and for the zero-budget first look).
  bool is_final = true;
  uint32_t refinements = 0;

  /// Monotonically increasing admission ticket. Every submission gets a
  /// unique ticket under the admission lock, so any scheduler-level
  /// randomization (none today) must derive its seed from the ticket —
  /// never from thread identity or completion order — to keep the async
  /// path bit-identical to the sequential one.
  uint64_t ticket = 0;

  double queue_ms = 0.0;  // admission -> a worker picked the task up
  double run_ms = 0.0;    // the AqpSystem::Answer call alone
  double total_ms = 0.0;  // admission -> resolution (queue + run)

  /// Semantic-answer-cache accounting, filled iff the answering system is
  /// served behind one (cache_enabled). `cache` is the cache's cumulative
  /// counter snapshot taken when this submission resolved — cumulative
  /// rather than per-query because concurrent queries share the counters;
  /// sequential callers diff consecutive snapshots for per-query deltas.
  bool cache_enabled = false;
  CacheStats cache;

  /// Specialized-scan-kernel accounting, filled iff the answering system
  /// dispatches through a KernelCache (jit_enabled; see
  /// jit/kernel_cache.h). Same snapshot semantics as `cache`: `kernel` is
  /// the cumulative tier-counter snapshot at resolution, and sequential
  /// callers diff consecutive snapshots to assert which tier
  /// (generic|fixed|jit) served a given query's scans.
  bool jit_enabled = false;
  KernelTierStats kernel;
};

/// When a progressive (AnswerUntil) submission may stop refining. The
/// scheduler iterates plan -> scan-delta -> check: it opens one
/// EstimationSession, advances it through a doubling ladder of cumulative
/// scan-unit budgets, and stops at the first answer whose confidence
/// interval is tight enough — or when the plan is exhausted or the
/// deadline expires, whichever comes first. Because each step resumes the
/// same session, reaching a given budget level costs exactly that many
/// scan units in total, never the sum of the ladder (the refine-vs-restart
/// sweep in bench_micro measures this).
struct StoppingCondition {
  /// Stop once the CI half-width at `confidence` is <= this. 0 = never
  /// satisfied by width — refine until the plan is exhausted or the
  /// deadline hits (a "best answer by the deadline" submission).
  double target_ci_width = 0.0;

  /// Confidence level of the interval checked against target_ci_width.
  double confidence = 0.99;

  /// Minimum scan units per refinement step. 0 = auto: max(64, plan/16),
  /// so a step is never too small to amortize the reassembly overhead.
  uint64_t min_step_units = 0;
};

/// What the scheduler does with a deadline submission it cannot serve in
/// time (see SubmitOptions::admission).
enum class AdmissionPolicy {
  /// Never shed a budget-capable query: even an expired-in-queue one runs
  /// with a zero budget and answers from hard bounds alone. The default,
  /// and the only behavior before admission control existed.
  kAlwaysAnswer,
  /// Shed with kDeadlineExceeded when even the zero-budget answer would
  /// miss the deadline — i.e. when the remaining time cannot cover the
  /// calibrated fixed per-query overhead (walk + merge; see
  /// BudgetCalibration::initial_overhead_ms). Checked at admission and
  /// again at dispatch. Queries whose deadline affords at least the
  /// overhead are never shed, no matter how small the granted budget.
  kRejectInfeasible,
};

/// Per-submission knobs. The struct is the extension point: new serving
/// modes add defaulted fields here (stopping conditions, admission
/// policies) instead of new Submit overloads, so existing two-field
/// aggregate initializers keep compiling unchanged.
struct SubmitOptions {
  /// Relative deadline, measured on the monotonic clock from the moment
  /// Submit admits the query. The policy is *anytime-first*:
  ///
  ///  * Budget-capable systems (AqpSystem::SupportsBudget()) are never
  ///    shed. At dispatch the remaining time is converted into a
  ///    scan-unit WorkBudget (see BudgetCalibration); a query that
  ///    expired while queued runs with a zero budget and returns the pure
  ///    bounds-midpoint answer. Either way the caller gets a valid — if
  ///    wider — answer, with `truncated`/`budget_*` reporting what was
  ///    sacrificed. Deadline answers are therefore load-dependent; only
  ///    deadline-free submissions carry the bit-identical-to-sync
  ///    guarantee.
  ///
  ///  * Systems without an anytime path keep the PR-3 admission-to-
  ///    dispatch policy: expired-in-queue work is shed unrun with
  ///    kDeadlineExceeded, and a query dispatched in time always runs to
  ///    completion (never truncated mid-scan).
  ///
  /// nullopt = no deadline; the query runs unbudgeted on every system and
  /// the delivered answer is bit-identical to the synchronous path.
  std::optional<std::chrono::milliseconds> deadline;

  /// Progressive mode: refine a resumable estimation until the condition
  /// holds (or the plan is exhausted / the deadline expires). Requires a
  /// budget-capable system and a fused aggregate (SUM/COUNT/AVG); other
  /// submissions answer once, in full, exactly as without `until`. With a
  /// callback submission every intermediate answer streams through the
  /// callback (is_final = false) before the final one; a future receives
  /// only the final answer. AnswerUntil() is sugar for setting this.
  std::optional<StoppingCondition> until;

  /// What to do when the deadline is infeasible even for a zero-budget
  /// answer. Only consulted for deadline submissions to budget-capable
  /// systems; systems without an anytime path always shed expired work
  /// (they cannot truncate).
  AdmissionPolicy admission = AdmissionPolicy::kAlwaysAnswer;
};

/// Construction-time capacity knobs.
struct SchedulerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency.
  size_t num_threads = 0;
  /// Bounded in-flight queue: when this many submissions are admitted but
  /// unresolved, Submit blocks (backpressure on the producer) until a slot
  /// frees or the scheduler shuts down. 0 = unbounded — what the
  /// BatchExecutor wrapper uses, since a closed batch is its own bound.
  size_t max_in_flight = 0;

  /// Deadline-to-WorkBudget conversion parameters (anytime serving).
  BudgetCalibration calibration;
};

/// The asynchronous serving core: one pool multiplexing many clients.
/// `Submit` hands a query to the pool and immediately returns a
/// std::future (or invokes a completion callback from the worker thread),
/// so a server front-end can keep thousands of requests in flight with
/// per-request deadlines. Deadline-free answers stay bit-identical to the
/// sequential path — every AqpSystem::Answer in this repository is const
/// and deterministic, the work units are index-free (each resolves its own
/// promise), and per-query seeds are derived at build time, never from
/// scheduling order. Deadline submissions to budget-capable systems get
/// *anytime* answers instead: the remaining time is converted into a
/// WorkBudget at dispatch (see SubmitOptions::deadline), trading CI width
/// for latency rather than shedding the query.
///
/// Composition with the per-shard fan-out: sharded engines block inside
/// Answer on the *separate* ParallelShardExecutor pool, so scheduler
/// workers never wait on tasks queued behind themselves — the two-level
/// handoff (scheduler pool -> shard pool) is deadlock-free by
/// construction at any client count and shard count.
///
/// Lifetime: the AqpSystem reference passed to Submit must stay alive
/// until that submission resolves (Drain()/Shutdown() are the fences
/// callers use before tearing an engine down).
class QueryScheduler {
 public:
  using Callback = std::function<void(ScheduledAnswer)>;

  explicit QueryScheduler(const SchedulerOptions& options = {});
  /// Convenience: a scheduler with `num_threads` workers, unbounded queue.
  explicit QueryScheduler(size_t num_threads);
  ~QueryScheduler();  // Shutdown()

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Process-wide scheduler for the given pool size, created on first use
  /// and kept for the process lifetime (mirrors BatchExecutor::Shared).
  /// Thread-safe.
  static QueryScheduler& Shared(size_t num_threads = 0);

  size_t num_threads() const { return pool_.num_threads(); }
  size_t max_in_flight() const { return max_in_flight_; }

  /// Current EWMA of the per-scan-unit cost (ms per sample row) used to
  /// price deadlines. Starts at the calibration's initial guess and learns
  /// from every completed budget-capable query. Thread-safe.
  double CalibratedUnitCostMs() const EXCLUDES(calibration_mu_);

  /// Current EWMA of the fixed per-query overhead (ms a zero-budget
  /// answer still pays: walk + split + merge). The admission controller's
  /// kRejectInfeasible floor. Thread-safe.
  double CalibratedOverheadMs() const EXCLUDES(calibration_mu_);

  /// Admitted-but-unresolved submissions right now (queued + running).
  size_t InFlight() const EXCLUDES(mu_);

  /// Submits one query for asynchronous answering. Blocks only for
  /// backpressure (bounded queue at capacity); otherwise returns
  /// immediately. After Shutdown() the returned future is already
  /// resolved with kUnavailable.
  std::future<ScheduledAnswer> Submit(const AqpSystem& system, Query query,
                                      const SubmitOptions& options = {});

  /// Completion-callback overload: `done` runs on the worker thread that
  /// resolved the submission (including rejection at shutdown, where it
  /// runs on the submitting thread). The callback must not throw and must
  /// not block on this scheduler's own pool. A progressive submission
  /// (options.until) invokes `done` once per intermediate answer
  /// (is_final = false) and once for the final one.
  void Submit(const AqpSystem& system, Query query,
              const SubmitOptions& options, Callback done);

  /// Progressive answering: refine until the stopping condition holds (or
  /// the deadline in `options` expires, or the plan is exhausted). Sugar
  /// for Submit with options.until = condition; see
  /// SubmitOptions::until for the contract. The future resolves with the
  /// final answer only.
  std::future<ScheduledAnswer> AnswerUntil(const AqpSystem& system,
                                           Query query,
                                           const StoppingCondition& condition,
                                           const SubmitOptions& options = {});

  /// Streaming overload: every intermediate answer reaches `done` with
  /// is_final = false, then the final one with is_final = true.
  void AnswerUntil(const AqpSystem& system, Query query,
                   const StoppingCondition& condition,
                   const SubmitOptions& options, Callback done);

  /// Blocks until every admitted submission has resolved. New submissions
  /// are still accepted during and after a drain; with concurrent
  /// producers this is a quiescence point, not an admission barrier.
  void Drain() EXCLUDES(mu_);

  /// Graceful shutdown: stops admission (subsequent Submits resolve with
  /// kUnavailable), unblocks producers waiting on backpressure, runs every
  /// already-admitted query to completion, and returns once the queue is
  /// empty. Idempotent; the destructor calls it.
  void Shutdown() EXCLUDES(mu_);

 private:
  struct Task;

  std::future<ScheduledAnswer> SubmitInternal(const AqpSystem& system,
                                              Query query,
                                              const SubmitOptions& options,
                                              Callback done, bool want_future)
      EXCLUDES(mu_);
  void RunTask(Task* task) EXCLUDES(mu_);
  /// The progressive (options.until) path of RunTask: session-resumed
  /// refinement over a doubling budget ladder. Fills everything in
  /// `result` except total_ms.
  void RunProgressive(Task* task, ScheduledAnswer* result);
  void ObserveUnitCost(double run_ms, uint64_t units)
      EXCLUDES(calibration_mu_);

  mutable Mutex mu_;
  CondVar slot_free_;  // backpressure + drain wakeups
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  uint64_t next_ticket_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  const size_t max_in_flight_;
  const BudgetCalibration calibration_;

  /// Deadline-pricing EWMAs, shared by every worker (their own lock so the
  /// hot admission path never contends with calibration updates).
  mutable Mutex calibration_mu_;
  double unit_cost_ms_ GUARDED_BY(calibration_mu_);
  double overhead_ms_ GUARDED_BY(calibration_mu_);

  mutable ThreadPool pool_;  // declared last: joins before state above dies
};

}  // namespace pass

#endif  // PASS_ENGINE_QUERY_SCHEDULER_H_
