#include "storage/dataset.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <utility>

namespace pass {

Dataset::Dataset(std::string agg_name, std::vector<std::string> pred_names)
    : agg_name_(std::move(agg_name)), pred_names_(std::move(pred_names)) {
  PASS_CHECK_MSG(!pred_names_.empty(),
                 "a dataset needs at least one predicate column");
  pred_cols_.resize(pred_names_.size());
}

Dataset::Dataset(const Dataset& other)
    : agg_name_(other.agg_name_),
      pred_names_(other.pred_names_),
      agg_(other.agg_),
      pred_cols_(other.pred_cols_),
      version_(other.version()) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  agg_name_ = other.agg_name_;
  pred_names_ = other.pred_names_;
  agg_ = other.agg_;
  pred_cols_ = other.pred_cols_;
  version_.store(other.version(), std::memory_order_release);
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : agg_name_(std::move(other.agg_name_)),
      pred_names_(std::move(other.pred_names_)),
      agg_(std::move(other.agg_)),
      pred_cols_(std::move(other.pred_cols_)),
      version_(other.version()) {}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  agg_name_ = std::move(other.agg_name_);
  pred_names_ = std::move(other.pred_names_);
  agg_ = std::move(other.agg_);
  pred_cols_ = std::move(other.pred_cols_);
  version_.store(other.version(), std::memory_order_release);
  return *this;
}

void Dataset::Reserve(size_t rows) {
  agg_.reserve(rows);
  for (auto& col : pred_cols_) col.reserve(rows);
}

void Dataset::AddRow(const std::vector<double>& preds, double agg) {
  PASS_CHECK(preds.size() == pred_cols_.size());
  for (size_t i = 0; i < preds.size(); ++i) pred_cols_[i].push_back(preds[i]);
  agg_.push_back(agg);
  // Release-publish the stamp after the row lands. Appends are
  // single-writer; the atomic only makes concurrent version() *reads*
  // (cache re-stamping during a streaming append) well-defined.
  version_.fetch_add(1, std::memory_order_release);
}

Dataset Dataset::WithPredDims(size_t num_dims) const {
  PASS_CHECK(num_dims >= 1 && num_dims <= NumPredDims());
  std::vector<std::string> names(
      pred_names_.begin(), pred_names_.begin() + static_cast<long>(num_dims));
  Dataset out(agg_name_, std::move(names));
  out.agg_ = agg_;
  for (size_t i = 0; i < num_dims; ++i) out.pred_cols_[i] = pred_cols_[i];
  return out;
}

Dataset Dataset::Subset(const std::vector<uint32_t>& row_ids) const {
  Dataset out(agg_name_, pred_names_);
  out.Reserve(row_ids.size());
  for (const uint32_t row : row_ids) {
    PASS_CHECK_MSG(row < NumRows(), "subset row id out of range");
    out.agg_.push_back(agg_[row]);
    for (size_t d = 0; d < pred_cols_.size(); ++d) {
      out.pred_cols_[d].push_back(pred_cols_[d][row]);
    }
  }
  return out;
}

std::vector<uint32_t> Dataset::SortedPermutation(size_t dim) const {
  PASS_CHECK(dim < pred_cols_.size());
  std::vector<uint32_t> perm(NumRows());
  std::iota(perm.begin(), perm.end(), 0u);
  const auto& col = pred_cols_[dim];
  std::stable_sort(perm.begin(), perm.end(),
                   [&col](uint32_t a, uint32_t b) { return col[a] < col[b]; });
  return perm;
}

Status Dataset::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  for (size_t i = 0; i < pred_names_.size(); ++i) {
    std::fprintf(f, "%s,", pred_names_[i].c_str());
  }
  std::fprintf(f, "%s\n", agg_name_.c_str());
  for (size_t row = 0; row < NumRows(); ++row) {
    for (size_t d = 0; d < pred_cols_.size(); ++d) {
      std::fprintf(f, "%.17g,", pred_cols_[d][row]);
    }
    std::fprintf(f, "%.17g\n", agg_[row]);
  }
  std::fclose(f);
  return Status::Ok();
}

Result<Dataset> Dataset::ReadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  char line[1 << 14];
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return Status::IoError("empty csv: " + path);
  }
  // Parse the header: last column is the aggregate.
  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      while (!cell.empty() && (cell.back() == '\n' || cell.back() == '\r')) {
        cell.pop_back();
      }
      names.push_back(cell);
    }
  }
  if (names.size() < 2) {
    std::fclose(f);
    return Status::IoError("csv needs >= 2 columns: " + path);
  }
  std::string agg_name = names.back();
  names.pop_back();
  Dataset out(std::move(agg_name), std::move(names));
  const size_t d = out.NumPredDims();
  std::vector<double> preds(d);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char* cursor = line;
    bool bad = false;
    for (size_t i = 0; i < d; ++i) {
      char* next = nullptr;
      preds[i] = std::strtod(cursor, &next);
      if (next == cursor || *next != ',') {
        bad = true;
        break;
      }
      cursor = next + 1;
    }
    if (bad) continue;  // skip malformed rows (e.g. trailing newline)
    char* next = nullptr;
    const double agg = std::strtod(cursor, &next);
    if (next == cursor) continue;
    out.AddRow(preds, agg);
  }
  std::fclose(f);
  return out;
}

}  // namespace pass
