#ifndef PASS_STORAGE_DATASET_H_
#define PASS_STORAGE_DATASET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace pass {

/// Columnar in-memory table for the paper's problem setup (Section 2): one
/// numerical *aggregation column* A and d *predicate columns* C1..Cd.
/// Rows are identified by dense uint32 ids; builders work with external
/// permutations of those ids rather than reordering the data.
class Dataset {
 public:
  /// Creates an empty dataset with named columns. `pred_names` defines the
  /// predicate dimensionality d (>= 1).
  Dataset(std::string agg_name, std::vector<std::string> pred_names);

  // The atomic version stamp deletes the implicit special members, so
  // they are spelled out (copies snapshot the stamp). Still value-typed.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  void Reserve(size_t rows);

  /// Appends a row; `preds.size()` must equal NumPredDims().
  void AddRow(const std::vector<double>& preds, double agg);

  size_t NumRows() const { return agg_.size(); }
  size_t NumPredDims() const { return pred_cols_.size(); }

  /// Monotonic mutation stamp: bumped by every AddRow, starting at 0 for
  /// an empty dataset. The semantic answer cache keys its validity on
  /// this, so a streaming append invalidates every cached answer derived
  /// from the previous contents. Derived datasets (Subset, WithPredDims)
  /// are new objects and carry their own stamps. Atomic so a cache
  /// re-stamping mid-append observes a coherent counter (the columns
  /// themselves are single-writer; see AddRow).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  double agg(size_t row) const {
    PASS_DCHECK(row < agg_.size());
    return agg_[row];
  }
  double pred(size_t dim, size_t row) const {
    PASS_DCHECK(dim < pred_cols_.size());
    PASS_DCHECK(row < pred_cols_[dim].size());
    return pred_cols_[dim][row];
  }

  const std::vector<double>& agg_column() const { return agg_; }
  const std::vector<double>& pred_column(size_t dim) const {
    PASS_DCHECK(dim < pred_cols_.size());
    return pred_cols_[dim];
  }

  const std::string& agg_name() const { return agg_name_; }
  const std::string& pred_name(size_t dim) const {
    PASS_DCHECK(dim < pred_names_.size());
    return pred_names_[dim];
  }

  /// A dataset restricted to the first `num_dims` predicate columns (used
  /// by the multi-dimensional query-template experiments, Section 5.4).
  /// Copies columns; aggregate column is shared content-wise.
  Dataset WithPredDims(size_t num_dims) const;

  /// A dataset containing exactly the given rows, in the given order (the
  /// shard-view primitive behind ShardPlanner). Ids may repeat; each must
  /// be < NumRows().
  Dataset Subset(const std::vector<uint32_t>& row_ids) const;

  /// Row ids 0..N-1 sorted ascending by predicate column `dim` (stable).
  std::vector<uint32_t> SortedPermutation(size_t dim) const;

  /// In-memory footprint of the raw columns, in bytes (storage accounting
  /// for the BSS / Table 2 comparisons).
  size_t SizeBytes() const {
    return (NumPredDims() + 1) * NumRows() * sizeof(double);
  }

  /// Writes `pred1,...,predd,agg` rows with a header line.
  Status WriteCsv(const std::string& path) const;

  /// Reads a CSV produced by WriteCsv (last column = aggregate).
  static Result<Dataset> ReadCsv(const std::string& path);

 private:
  std::string agg_name_;
  std::vector<std::string> pred_names_;
  std::vector<double> agg_;
  std::vector<std::vector<double>> pred_cols_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace pass

#endif  // PASS_STORAGE_DATASET_H_
